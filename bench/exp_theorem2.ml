(* E12–E13: Theorem 2 — skip-web query complexity.

   General case: a skip-web over any structure with a set-halving lemma
   answers queries in O(log n) expected messages on n hosts with O(log n)
   memory — even when the underlying structure has Θ(n) depth (the
   adversarial workloads below). One-dimensional data with the blocking
   strategy improves to O(log n / log log n). *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module Cq = Skipweb_quadtree.Cqtree
module Ct = Skipweb_trie.Ctrie
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module C = Bench_common

module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)
module HSeg = H.Make (I.Segments)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let quad_messages ~seed ~n ~queries gen =
  let pts = gen ~seed ~n in
  let net = Network.create ~hosts:(max 16 (Array.length pts)) in
  let h = HP2.build ~net ~seed pts in
  let rng = Prng.create (seed + 1) in
  Stats.mean
    (Array.to_list
       (Array.map
          (fun q ->
            let _, stats = HP2.query h ~rng q in
            float_of_int stats.HP2.messages)
          queries))

let trie_messages ~seed ~n ~queries gen =
  let strs = gen ~seed ~n in
  let net = Network.create ~hosts:(max 16 (Array.length strs)) in
  let h = HStr.build ~net ~seed strs in
  let rng = Prng.create (seed + 1) in
  Stats.mean
    (Array.to_list
       (Array.map
          (fun q ->
            let _, stats = HStr.query h ~rng q in
            float_of_int stats.HStr.messages)
          queries))

let trap_messages ~seed ~n ~queries =
  let segs = W.disjoint_segments ~seed ~n in
  let net = Network.create ~hosts:(max 16 n) in
  let h = HSeg.build ~net ~seed segs in
  let rng = Prng.create (seed + 1) in
  let costs =
    Array.to_list queries
    |> List.filter_map (fun q ->
           match
             let _, stats = HSeg.query h ~rng q in
             Some stats.HSeg.messages
           with
           | exception Failure _ -> None
           | v -> Option.map float_of_int v)
  in
  Stats.mean costs

let run (cfg : C.config) =
  C.section "Theorem 2: skip-web query complexity (E12-E13)";
  C.with_pool cfg @@ fun pool ->
  (* Multi-dimensional: O(log n) messages, depth-independent. *)
  let quad_sizes = cfg.C.sizes in
  C.print_shape_table ~title:"quadtree skip-web Q(n) messages" ~sizes:quad_sizes
    [
      ( "uniform 2-d points",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                quad_messages ~seed ~n ~queries:(W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim:2)
                  (fun ~seed ~n -> W.uniform_points ~seed ~n ~dim:2)))
          quad_sizes,
        "~O(log n)" );
      ( "clustered 2-d points",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                quad_messages ~seed ~n ~queries:(W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim:2)
                  (fun ~seed ~n -> W.clustered_points ~seed ~n ~dim:2 ~clusters:6 ~radius:0.02)))
          quad_sizes,
        "~O(log n)" );
    ];
  (* The deep-input punchline: a diagonal point set has tree depth Θ(n),
     yet skip-web messages track the hierarchy height, not the depth. *)
  let deep_sizes = [ 8; 12; 16; 20; 24; 28 ] in
  C.print_shape_table ~title:"quadtree skip-web on Θ(n)-depth diagonal inputs" ~sizes:deep_sizes
    [
      ( "skip-web Q(n) messages",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                quad_messages ~seed ~n ~queries:(W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim:2)
                  (fun ~seed:_ ~n -> W.diagonal_points ~n ~dim:2)))
          deep_sizes,
        "~O(log n)" );
      ( "underlying tree depth",
        List.map
          (fun n -> float_of_int (Cq.depth (Cq.build ~dim:2 (W.diagonal_points ~n ~dim:2))))
          deep_sizes,
        "Θ(n)" );
    ];
  (* Tries. *)
  let trie_sizes = List.filter (fun n -> n <= 4096) cfg.C.sizes in
  C.print_shape_table ~title:"trie skip-web Q(n) messages" ~sizes:trie_sizes
    [
      ( "random strings",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                let strs = W.random_strings ~seed ~n ~alphabet:4 ~len:10 in
                trie_messages ~seed ~n
                  ~queries:(W.string_queries ~seed:(seed + 2) ~keys:strs ~n:cfg.C.queries)
                  (fun ~seed:_ ~n:_ -> strs)))
          trie_sizes,
        "~O(log n)" );
    ];
  let deep_trie_sizes = [ 16; 32; 48; 64 ] in
  C.print_shape_table ~title:"trie skip-web on Θ(n)-depth prefix-heavy inputs" ~sizes:deep_trie_sizes
    [
      ( "skip-web Q(n) messages",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                let strs = W.prefix_heavy_strings ~seed ~n ~alphabet:4 in
                trie_messages ~seed ~n
                  ~queries:(W.string_queries ~seed:(seed + 2) ~keys:strs ~n:cfg.C.queries)
                  (fun ~seed:_ ~n:_ -> strs)))
          deep_trie_sizes,
        "~O(log n)" );
      ( "underlying trie string depth",
        List.map
          (fun n ->
            float_of_int (Ct.max_string_depth (Ct.build (W.prefix_heavy_strings ~seed:1 ~n ~alphabet:4))))
          deep_trie_sizes,
        "Θ(n)" );
    ];
  (* Trapezoidal maps. *)
  let trap_sizes = List.filter (fun n -> n <= 1024) cfg.C.sizes in
  C.print_shape_table ~title:"trapezoidal-map skip-web Q(n) messages (point location)" ~sizes:trap_sizes
    [
      ( "disjoint segments",
        List.map
          (fun n ->
            C.mean_over_seeds cfg.C.seeds (fun seed ->
                trap_messages ~seed ~n ~queries:(W.trapmap_query_points ~seed:(seed + 2) ~n:cfg.C.queries)))
          trap_sizes,
        "~O(log n)" );
    ];
  (* The set-halving constant in vivo: mean ranges visited per level while
     querying (Lemma 3/4 at work inside Theorem 2). *)
  let refinement_sizes = List.filter (fun n -> n <= 4096) cfg.C.sizes in
  let quad_refinement ~seed ~n =
    let pts = W.uniform_points ~seed ~n ~dim:2 in
    let net = Network.create ~hosts:n in
    let h = HP2.build ~net ~seed pts in
    HP2.mean_refinement_work h
      ~queries:(W.uniform_query_points ~seed:(seed + 2) ~n:cfg.C.queries ~dim:2)
      ~rng:(Prng.create (seed + 1))
  in
  let trie_refinement ~seed ~n =
    let strs = W.random_strings ~seed ~n ~alphabet:4 ~len:10 in
    let net = Network.create ~hosts:n in
    let h = HStr.build ~net ~seed strs in
    HStr.mean_refinement_work h
      ~queries:(W.string_queries ~seed:(seed + 2) ~keys:strs ~n:cfg.C.queries)
      ~rng:(Prng.create (seed + 1))
  in
  C.print_shape_table ~title:"mean ranges visited per level (the set-halving constant)"
    ~sizes:refinement_sizes
    [
      ( "quadtree skip-web",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun s -> quad_refinement ~seed:s ~n)) refinement_sizes,
        "O(1)" );
      ( "trie skip-web",
        List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun s -> trie_refinement ~seed:s ~n)) refinement_sizes,
        "O(1)" );
    ];
  (* E13: the blocked 1-d structure vs its own log n / log log n claim; the
     normalized column Q / (log n / loglog n) should be flat. *)
  let blocked ~seed ~n =
    let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
    let net = Network.create ~hosts:n in
    let g = B1.build ~net ~seed ~m:(4 * log2i n) keys in
    let rng = Prng.create (seed + 1) in
    let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:cfg.C.queries ~bound:(100 * n) in
    (* The E13 query phase fans out over the --jobs pool; the batch
       pre-draws origins, so the measured costs are bit-identical to the
       sequential map for any jobs count. *)
    let rs = B1.query_batch ?pool g ~rng qs in
    Stats.mean (Array.to_list (Array.map (fun (r : B1.search_result) -> float_of_int r.B1.messages) rs))
  in
  let q_series = List.map (fun n -> C.mean_over_seeds cfg.C.seeds (fun seed -> blocked ~seed ~n)) cfg.C.sizes in
  let normalized =
    List.map2
      (fun n q ->
        let l = C.log2f n in
        q /. (l /. Float.max 1.0 (Float.log l /. Float.log 2.0)))
      cfg.C.sizes q_series
  in
  C.print_shape_table ~title:"blocked 1-d skip-web (M = 4 log n, H = n)" ~sizes:cfg.C.sizes
    [
      ("Q(n) messages", q_series, "~O(log n/loglog n)");
      ("Q(n) / (log n/loglog n)", normalized, "flat");
    ]
