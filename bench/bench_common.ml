(* Shared plumbing for the experiment harness: size sweeps, seed handling,
   and the table format every experiment prints.

   Every experiment prints measured series alongside the paper's predicted
   asymptotic shape and a least-squares fitted shape, so "does the shape
   hold" is visible directly in the output. *)

module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables
module Prng = Skipweb_util.Prng
module Pool = Skipweb_util.Pool

type config = {
  sizes : int list;
  queries : int;
  updates : int;
  seeds : int list;
  quick : bool;
  jobs : int;  (* domains used for parallel query and batch-write phases *)
}

let default_config =
  {
    sizes = [ 256; 512; 1024; 2048; 4096; 8192 ];
    queries = 150;
    updates = 30;
    seeds = [ 1; 2; 3 ];
    quick = false;
    jobs = 1;
  }

let quick_config =
  { sizes = [ 256; 1024 ]; queries = 60; updates = 10; seeds = [ 1 ]; quick = true; jobs = 1 }

(* The single wall-clock source for every exp_* measurement: bechamel's
   monotonic clock (ns), immune to NTP jumps — [Unix.gettimeofday] is not,
   and per-file copies of [now] invite it back. *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* Wall-clock a phase on the monotonic clock. Used for whole parallel
   phases, so the result is elapsed time, not summed per-domain CPU time —
   [Sys.time] would report the latter and hide any speedup. *)
let timed f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

(* Run [f] with the pool the config asks for (None when jobs <= 1), and
   shut the pool down afterwards. Experiments scope their pool to one
   [run] call so a crashed experiment never leaks domains. *)
let with_pool (cfg : config) f = Pool.with_pool ~jobs:cfg.jobs f

(* Every --jobs entry point validates through here: oversubscribing
   domains past the hardware's recommendation silently serializes (and
   on OCaml 5 actively thrashes the minor heaps), so cap with a warning
   instead. *)
let clamp_jobs jobs = Pool.clamp_jobs jobs

let log2f n = Float.log (float_of_int n) /. Float.log 2.0

(* One experiment table: rows are methods/workloads, columns are sizes,
   plus the fitted growth shape and the paper's claim. *)
let print_shape_table ~title ~sizes rows =
  let t =
    Tables.create ~title
      ~columns:
        ([ "series" ] @ List.map (fun n -> Printf.sprintf "n=%d" n) sizes @ [ "fitted shape"; "paper" ])
  in
  List.iter
    (fun (label, series, paper) ->
      let cells = List.map (fun v -> Tables.cell_float v) series in
      let fit =
        if List.length series >= 2 then
          Stats.Fit.report (List.map2 (fun n v -> (float_of_int n, v)) sizes series)
        else "n/a"
      in
      Tables.add_row t (label :: cells @ [ fit; paper ]))
    rows;
  Tables.print t

(* Per-seed measurements, optionally fanned out over a pool: each seed
   builds its own structure and network, so seed replicas are trivially
   independent. [Pool.parallel_map] preserves index order, so the mean is
   folded in the same order as the sequential map — bit-identical. *)
let map_seeds ?pool seeds f =
  match pool with
  | None -> List.map f seeds
  | Some p -> Array.to_list (Pool.parallel_map p f (Array.of_list seeds))

(* Mean over seeds of a per-seed measurement. *)
let mean_over_seeds ?pool seeds f = Stats.mean (map_seeds ?pool seeds f)

let mean_int_list xs = Stats.mean (List.map float_of_int xs)

let section name =
  Printf.printf "\n%s\n%s\n\n" name (String.make (String.length name) '=')

(* ---------------- structured metrics output ---------------- *)

(* Every experiment that emits a machine-readable metrics block writes it
   through here so the BENCH_*.json artifacts stay uniform across PRs. *)
let write_json ~file contents =
  let oc = open_out file in
  output_string oc contents;
  close_out oc;
  Printf.printf "wrote %s\n%!" file

let json_of_summary = Skipweb_util.Metrics.json_of_summary

(* Observability must not perturb the cost model: run the same seeded
   workload twice, untraced and traced, and insist the simulator's message
   totals agree exactly. [run] must build its structure and rng fresh on
   every call so both runs see identical coin flips. *)
let assert_trace_transparent ~label ~(run : traced:bool -> int) =
  let plain = run ~traced:false in
  let traced = run ~traced:true in
  if plain <> traced then
    failwith
      (Printf.sprintf "%s: tracing changed total_messages (%d untraced vs %d traced)" label plain
         traced);
  Printf.printf "tracing transparency [%s]: OK (%d messages either way)\n" label plain

(* Fresh interior keys for update workloads: drawn from the same domain as
   the stored keys so updates exercise interior paths, not the rightmost
   spine. *)
let fresh_keys ~seed ~count ~bound ~existing =
  let taken = Hashtbl.create (Array.length existing) in
  Array.iter (fun k -> Hashtbl.replace taken k ()) existing;
  let rng = Prng.create (seed + 0x715) in
  let out = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let k = Prng.int rng bound in
    if not (Hashtbl.mem taken k) then begin
      Hashtbl.replace taken k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  out
