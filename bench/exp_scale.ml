(* E15: wall-clock scalability of the host-side update path and the
   parallel read path.

   The message-count experiments treat the simulator as free; this one
   makes sure it actually is. We bulk-load a generic 1-d skip-web at
   n in {1k, 10k, 100k, 1M} and then run a mixed churn workload (40%
   insert, 40% delete, 20% query) against it, timing both phases. With
   the incremental id arena, delta-driven memory recharging and the
   chunked sorted sequences backing every level list, the per-op
   host-side cost is O(log n) hashtable work plus an O(√n)-bounded chunk
   memmove per level — the flat-array representation this replaced
   copied the whole level-0 array on every update, and the seed
   implementation before it rebuilt O(n) state per update.

   Bulk load goes through [Hierarchy.insert_batch] (which [build]
   routes through): one registration pass, then one sorted sweep per
   level instead of n independent locates. With --jobs > 1 the per-level
   sweeps fan out over the domain pool (one task per level, heaviest
   first), so the build is timed as a parallel phase; the resulting
   structure and charges are bit-identical for every jobs count.

   After the churn, a query-only phase fans independent queries out over
   the --jobs domain pool (§4 only serializes updates; queries are
   read-only walks). Each query i draws its coins from [Prng.stream] i —
   a pure function of (seed, i) — and each domain records latency into
   its own [Metrics] shard, merged by name afterwards, so the emitted
   message statistics are bit-identical for every jobs count and only the
   wall clock changes.

   A final batch-write phase times [insert_batch]/[remove_batch] of a
   fresh key batch under the same pool — the parallel write path's
   headline number. Batch writes are host-side maintenance (no query
   routing), so the phase adds no messages and leaves every deterministic
   field untouched; its wall clocks live in the "write" JSON member,
   stripped by CI alongside "timing" and "latency".

   Per-op wall-clock latency is recorded into a [Metrics] registry
   (insert/remove/query in microseconds, via the monotonic clock in
   [Bench_common.now]), so the JSON carries p50/p90/p99 latency shapes
   alongside throughput. Results are printed as a table and written to
   BENCH_scale.json so the perf trajectory is machine-readable across
   PRs. Timing fields are confined to the "timing" and "latency" JSON
   members, so CI can strip them and byte-compare the rest across jobs
   settings. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Metrics = Skipweb_util.Metrics
module DPool = Skipweb_util.Pool
module C = Bench_common

module HInt = H.Make (I.Ints)
module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)
module O = Skipweb_util.Ordseq

type row = {
  n : int;
  build_s : float;
  churn_ops : int;
  churn_s : float;
  churn_messages : int;
  mean_update_msgs : float;
  final_size : int;
  query_ops : int;
  query_s : float;
  write_batch : int;
  write_insert_s : float;
  write_remove_s : float;
  write_mem_total : int;  (* total charged memory after the write phase *)
  jobs : int;
  metrics : Metrics.t;  (* per-op latency histograms (us) + query messages *)
}

(* A swap-pop pool of the keys currently stored, for uniform delete
   targets without scanning. *)
module Key_pool = struct
  type t = { mutable data : int array; mutable len : int; pos : (int, int) Hashtbl.t }

  let of_array keys =
    let data = Array.copy keys in
    let pos = Hashtbl.create (Array.length keys) in
    Array.iteri (fun i k -> Hashtbl.replace pos k i) data;
    { data; len = Array.length data; pos }

  let mem p k = Hashtbl.mem p.pos k

  let add p k =
    if not (mem p k) then begin
      if p.len = Array.length p.data then begin
        let bigger = Array.make (max 8 (2 * p.len)) 0 in
        Array.blit p.data 0 bigger 0 p.len;
        p.data <- bigger
      end;
      p.data.(p.len) <- k;
      Hashtbl.replace p.pos k p.len;
      p.len <- p.len + 1
    end

  let remove_random p rng =
    if p.len = 0 then None
    else begin
      let i = Prng.int rng p.len in
      let k = p.data.(i) in
      let last = p.len - 1 in
      p.data.(i) <- p.data.(last);
      Hashtbl.replace p.pos p.data.(i) i;
      p.len <- last;
      Hashtbl.remove p.pos k;
      Some k
    end
end

let measure ~pool ~seed ~n ~ops =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:n in
  let h, build_s = C.timed (fun () -> HInt.build ~net ~seed ?pool keys) in
  let kpool = Key_pool.of_array keys in
  let rng = Prng.create (seed + 0x5ca1e) in
  let messages = ref 0 in
  let updates = ref 0 in
  let m = Metrics.create () in
  let timed name f =
    let s = C.now () in
    let r = f () in
    let us = 1e6 *. (C.now () -. s) in
    Metrics.observe m name us;
    Metrics.observe m "op_us" us;
    r
  in
  let t1 = C.now () in
  for i = 0 to ops - 1 do
    match i mod 5 with
    | 0 | 2 ->
        (* Insert a fresh key. *)
        let rec fresh () =
          let k = Prng.int rng bound in
          if Key_pool.mem kpool k then fresh () else k
        in
        let k = fresh () in
        messages := !messages + timed "insert_us" (fun () -> HInt.insert h k);
        incr updates;
        Key_pool.add kpool k
    | 1 | 3 -> (
        match Key_pool.remove_random kpool rng with
        | Some k ->
            messages := !messages + timed "remove_us" (fun () -> HInt.remove h k);
            incr updates
        | None -> ())
    | _ ->
        let q = Prng.int rng bound in
        let _, stats = timed "query_us" (fun () -> HInt.query h ~rng q) in
        messages := !messages + stats.HInt.messages
  done;
  let churn_s = C.now () -. t1 in
  HInt.check_invariants h;
  (* Parallel read phase: independent queries over the settled structure.
     Query keys are drawn sequentially; query i's origin coins come from
     [Prng.stream qcoins i], a pure function of (seed, i) — never of the
     chunk layout — so every jobs count computes the same messages. The
     message counts land in an index-slotted array and are folded into
     the registry sequentially (deterministic sample order); only the
     per-domain latency shards depend on the chunking, and latency is
     non-deterministic anyway. *)
  let query_ops = 2 * ops in
  let qgen = Prng.create (seed + 0xba7c4) in
  let qs = Array.init query_ops (fun _ -> Prng.int qgen bound) in
  let qcoins = Prng.create (seed + 0x0271617) in
  let jobs = match pool with None -> 1 | Some p -> DPool.jobs p in
  let msgs_of = Array.make query_ops 0 in
  let shards = Array.init jobs (fun _ -> Metrics.create ()) in
  let chunk c =
    let shard = shards.(c) in
    let lo = c * query_ops / jobs and hi = (c + 1) * query_ops / jobs in
    for i = lo to hi - 1 do
      let s = C.now () in
      let _, stats = HInt.query h ~rng:(Prng.stream qcoins i) qs.(i) in
      Metrics.observe shard "pq_us" (1e6 *. (C.now () -. s));
      msgs_of.(i) <- stats.HInt.messages
    done
  in
  let t2 = C.now () in
  (match pool with
  | None -> chunk 0
  | Some p -> DPool.parallel_for p ~lo:0 ~hi:jobs chunk);
  let query_s = C.now () -. t2 in
  Array.iter (fun v -> Metrics.observe_int m "query.messages" v) msgs_of;
  Array.iter (fun shard -> Metrics.merge m shard) shards;
  let final_size = HInt.size h in
  (* Batch-write phase: bulk-insert a fresh batch and bulk-remove it
     again, both fanned per level over the pool. Keys are drawn above the
     stored domain so the batch is disjoint from the structure by
     construction; writes route no queries, so the phase adds no messages
     and the only deterministic fields it contributes are the op count and
     the (restored) total charged memory. *)
  let write_batch = max 500 (min 20_000 (n / 5)) in
  let wgen = Prng.create (seed + 0x3b17e) in
  let wtaken = Hashtbl.create write_batch in
  let wkeys = Array.make write_batch 0 in
  let filled = ref 0 in
  while !filled < write_batch do
    let k = bound + Prng.int wgen bound in
    if not (Hashtbl.mem wtaken k) then begin
      Hashtbl.replace wtaken k ();
      wkeys.(!filled) <- k;
      incr filled
    end
  done;
  let inserted, write_insert_s = C.timed (fun () -> HInt.insert_batch ?pool h wkeys) in
  let removed, write_remove_s = C.timed (fun () -> HInt.remove_batch ?pool h wkeys) in
  if inserted <> write_batch || removed <> write_batch then
    failwith "exp_scale: write phase lost keys";
  HInt.check_invariants h;
  {
    n;
    build_s;
    churn_ops = ops;
    churn_s;
    churn_messages = !messages;
    mean_update_msgs =
      (if !updates = 0 then 0.0 else float_of_int !messages /. float_of_int !updates);
    final_size;
    query_ops;
    query_s;
    write_batch;
    write_insert_s;
    write_remove_s;
    write_mem_total = Network.total_memory net;
    jobs;
    metrics = m;
  }

(* ---------------- multi-dimensional scale rows ---------------- *)

(* The same shape for the multi-dimensional structures: timed bulk load
   (through [of_sorted] under the pool), a sequential churn mix (50%
   insert / 25% delete / 25% point query), then a parallel query-only
   phase through [query_batch]. Every field except the wall clocks is a
   pure function of the seed — the pool never changes answers, charges
   or message totals, only time. *)
type md_row = {
  md_structure : string;
  md_n : int;
  md_build_s : float;
  md_churn_ops : int;
  md_churn_s : float;
  md_churn_messages : int;
  md_query_ops : int;
  md_query_s : float;
  md_query_messages : int;
  md_final_size : int;
  md_jobs : int;
}

(* Distinct keys only: duplicates would be skipped by the build, leaving
   the alive pool out of sync with the structure (a later delete of the
   same key would then be a delete of a missing key). *)
let dedup_keys base reserve =
  let seen = Hashtbl.create (Array.length base + Array.length reserve) in
  let keep k = if Hashtbl.mem seen k then false else (Hashtbl.add seen k (); true) in
  let base = Array.of_list (List.filter keep (Array.to_list base)) in
  let reserve = Array.of_list (List.filter keep (Array.to_list reserve)) in
  (base, reserve)

let measure_points ~pool ~seed ~n ~ops =
  let base = W.uniform_points ~seed ~n ~dim:2 in
  let reserve = W.uniform_points ~seed:(seed + 0x2d11) ~n:ops ~dim:2 in
  let base, reserve = dedup_keys base reserve in
  let n = Array.length base in
  let net = Network.create ~hosts:(min n 4096) in
  let h, md_build_s = C.timed (fun () -> HP2.build ~net ~seed ?pool base) in
  (* Alive pool with swap-pop removal, seeded with the stored keys. *)
  let alive = Array.make (n + ops) base.(0) in
  Array.blit base 0 alive 0 n;
  let len = ref n in
  let next_fresh = ref 0 in
  let rng = Prng.create (seed + 0x9d2) in
  let messages = ref 0 in
  let t1 = C.now () in
  for i = 0 to ops - 1 do
    match i mod 4 with
    | 0 | 2 when !next_fresh < Array.length reserve ->
        let k = reserve.(!next_fresh) in
        incr next_fresh;
        messages := !messages + HP2.insert h k;
        alive.(!len) <- k;
        incr len
    | 1 when !len > 1 ->
        let j = Prng.int rng !len in
        let k = alive.(j) in
        alive.(j) <- alive.(!len - 1);
        decr len;
        messages := !messages + HP2.remove h k
    | _ ->
        let q = alive.(Prng.int rng !len) in
        let _, stats = HP2.query h ~rng q in
        messages := !messages + stats.HP2.messages
  done;
  let md_churn_s = C.now () -. t1 in
  HP2.check_invariants h;
  let md_query_ops = 2 * ops in
  let qrng = Prng.create (seed + 0x51a) in
  let qs = Array.init md_query_ops (fun _ -> alive.(Prng.int qrng !len)) in
  let orng = Prng.create (seed + 0x52b) in
  let res, md_query_s = C.timed (fun () -> HP2.query_batch ?pool h ~rng:orng qs) in
  let md_query_messages = Array.fold_left (fun a (_, s) -> a + s.HP2.messages) 0 res in
  {
    md_structure = "quadtree-2d";
    md_n = n;
    md_build_s;
    md_churn_ops = ops;
    md_churn_s;
    md_churn_messages = !messages;
    md_query_ops;
    md_query_s;
    md_query_messages;
    md_final_size = HP2.size h;
    md_jobs = (match pool with None -> 1 | Some p -> DPool.jobs p);
  }

let measure_strings ~pool ~seed ~n ~ops =
  let base = W.random_strings ~seed ~n ~alphabet:4 ~len:10 in
  (* Length 11 keeps the reserve disjoint from the base by construction. *)
  let reserve = W.random_strings ~seed:(seed + 0x2d11) ~n:ops ~alphabet:4 ~len:11 in
  let base, reserve = dedup_keys base reserve in
  let n = Array.length base in
  let net = Network.create ~hosts:(min n 4096) in
  let h, md_build_s = C.timed (fun () -> HStr.build ~net ~seed ?pool base) in
  let alive = Array.make (n + ops) base.(0) in
  Array.blit base 0 alive 0 n;
  let len = ref n in
  let next_fresh = ref 0 in
  let rng = Prng.create (seed + 0x9d2) in
  let messages = ref 0 in
  let t1 = C.now () in
  for i = 0 to ops - 1 do
    match i mod 4 with
    | 0 | 2 when !next_fresh < Array.length reserve ->
        let k = reserve.(!next_fresh) in
        incr next_fresh;
        messages := !messages + HStr.insert h k;
        alive.(!len) <- k;
        incr len
    | 1 when !len > 1 ->
        let j = Prng.int rng !len in
        let k = alive.(j) in
        alive.(j) <- alive.(!len - 1);
        decr len;
        messages := !messages + HStr.remove h k
    | _ ->
        let q = alive.(Prng.int rng !len) in
        let _, stats = HStr.query h ~rng q in
        messages := !messages + stats.HStr.messages
  done;
  let md_churn_s = C.now () -. t1 in
  HStr.check_invariants h;
  let md_query_ops = 2 * ops in
  let qrng = Prng.create (seed + 0x51a) in
  let qs = Array.init md_query_ops (fun _ -> alive.(Prng.int qrng !len)) in
  let orng = Prng.create (seed + 0x52b) in
  let res, md_query_s = C.timed (fun () -> HStr.query_batch ?pool h ~rng:orng qs) in
  let md_query_messages = Array.fold_left (fun a (_, s) -> a + s.HStr.messages) 0 res in
  {
    md_structure = "trie";
    md_n = n;
    md_build_s;
    md_churn_ops = ops;
    md_churn_s;
    md_churn_messages = !messages;
    md_query_ops;
    md_query_s;
    md_query_messages;
    md_final_size = HStr.size h;
    md_jobs = (match pool with None -> 1 | Some p -> DPool.jobs p);
  }

let json_of_md_rows rows =
  let row_json r =
    Printf.sprintf
      "    {\"structure\": \"%s\", \"n\": %d, \"churn_ops\": %d, \"churn_messages\": %d, \
       \"query_ops\": %d, \"query_messages\": %d, \"final_size\": %d,\n\
      \     \"timing\": {\"jobs\": %d, \"build_s\": %.6f, \"churn_s\": %.6f, \
       \"churn_ops_per_s\": %.1f, \"query_s\": %.6f, \"query_ops_per_s\": %.1f}}"
      r.md_structure r.md_n r.md_churn_ops r.md_churn_messages r.md_query_ops
      r.md_query_messages r.md_final_size r.md_jobs r.md_build_s r.md_churn_s
      (float_of_int r.md_churn_ops /. Float.max 1e-9 r.md_churn_s)
      r.md_query_s
      (float_of_int r.md_query_ops /. Float.max 1e-9 r.md_query_s)
  in
  Printf.sprintf "  \"multi_d_rows\": [\n%s\n  ]"
    (String.concat ",\n" (List.map row_json rows))

(* ---------------- the --jobs write sweep ---------------- *)

(* One point of the speedup curve: the same batch insert + remove cycle
   timed under a pool of [sw_jobs] domains. *)
type sweep_point = { sw_jobs : int; sw_insert_s : float; sw_remove_s : float }

(* Fresh keys above the stored domain, disjoint from the structure by
   construction (same recipe as the per-row write phase). *)
let fresh_batch ~seed ~bound count =
  let gen = Prng.create (seed + 0x3b17e) in
  let taken = Hashtbl.create count in
  let out = Array.make count 0 in
  let filled = ref 0 in
  while !filled < count do
    let k = bound + Prng.int gen bound in
    if not (Hashtbl.mem taken k) then begin
      Hashtbl.replace taken k ();
      out.(!filled) <- k;
      incr filled
    end
  done;
  out

(* The write-throughput speedup curve: one structure at the sweep size,
   then for each jobs count a timed [insert_batch] + [remove_batch] cycle
   under its own pool — the remove restores the pre-cycle state exactly,
   so every point times the same transition. Two determinism asserts ride
   along: the hierarchy's charged memory and size must agree across all
   points, and the raw Ordseq chunk layout after the same batch splice
   must be bit-identical to the sequential one for every jobs count. *)
let write_sweep ~seed ~n jobs_list =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  let batch = max 500 (min 20_000 (n / 5)) in
  let wkeys = fresh_batch ~seed ~bound batch in
  let baseline = ref None in
  let points =
    List.map
      (fun jobs ->
        DPool.with_pool ~jobs (fun pool ->
            let inserted, sw_insert_s = C.timed (fun () -> HInt.insert_batch ?pool h wkeys) in
            let mem_full = Network.total_memory net in
            let removed, sw_remove_s = C.timed (fun () -> HInt.remove_batch ?pool h wkeys) in
            if inserted <> batch || removed <> batch then
              failwith "exp_scale: write sweep lost keys";
            let state = (mem_full, Network.total_memory net, HInt.size h) in
            (match !baseline with
            | None -> baseline := Some state
            | Some base ->
                if state <> base then failwith "exp_scale: write sweep diverged across jobs");
            { sw_jobs = jobs; sw_insert_s; sw_remove_s }))
      jobs_list
  in
  (* Ordseq layout identity: the chunk-sharded splice itself, checked at
     the chunk level — the final layout is a pure function of (pre-state,
     batch), never of the jobs count. *)
  let sorted_w = Array.copy wkeys in
  Array.sort compare sorted_w;
  let layout jobs =
    DPool.with_pool ~jobs (fun pool ->
        let o = O.of_array ?pool keys in
        ignore (O.insert_batch ?pool o sorted_w : int);
        let after_insert = O.chunk_lengths o in
        ignore (O.remove_batch ?pool o sorted_w : int);
        (after_insert, O.chunk_lengths o))
  in
  (match jobs_list with
  | [] | [ _ ] -> ()
  | j1 :: rest ->
      let base = layout j1 in
      List.iter
        (fun j ->
          if layout j <> base then failwith "exp_scale: Ordseq chunk layout diverged across jobs")
        rest);
  (batch, points)

let json_of_sweep ~n ~batch points =
  let total p = p.sw_insert_s +. p.sw_remove_s in
  let base = match points with p :: _ -> total p | [] -> 0.0 in
  let point_json p =
    (* Whole point on one line carrying "timing", so the CI jobs-diff
       strips it; "speedup" stays greppable in the full artifact. *)
    Printf.sprintf
      "      {\"jobs\": %d, \"timing\": {\"insert_s\": %.6f, \"remove_s\": %.6f, \
       \"write_ops_per_s\": %.1f}, \"speedup\": %.2f}"
      p.sw_jobs p.sw_insert_s p.sw_remove_s
      (float_of_int (2 * batch) /. Float.max 1e-9 (total p))
      (base /. Float.max 1e-9 (total p))
  in
  Printf.sprintf
    "  \"write_sweep\": {\"n\": %d, \"batch\": %d, \"jobs_swept\": [%s],\n\
    \    \"points\": [\n%s\n    ]}"
    n batch
    (String.concat ", " (List.map (fun p -> string_of_int p.sw_jobs) points))
    (String.concat ",\n" (List.map point_json points))

let json_of_rows ?sweep ?multi_d rows =
  let latency_json r =
    let field name =
      match Metrics.histogram_summary r.metrics name with
      | Some s -> Some (Printf.sprintf "\"%s\": %s" name (Metrics.json_of_summary s))
      | None -> None
    in
    String.concat ", "
      (List.filter_map field [ "insert_us"; "remove_us"; "query_us"; "op_us"; "pq_us" ])
  in
  let query_messages_json r =
    match Metrics.histogram_summary r.metrics "query.messages" with
    | Some s -> Metrics.json_of_summary s
    | None -> "{\"count\": 0}"
  in
  let row_json r =
    let write_ops = 2 * r.write_batch in
    let write_s = r.write_insert_s +. r.write_remove_s in
    Printf.sprintf
      "    {\"n\": %d, \"churn_ops\": %d, \"churn_messages\": %d, \"mean_update_msgs\": %.2f, \
       \"final_size\": %d, \"write_ops\": %d, \"write_mem_total\": %d,\n\
      \     \"query\": {\"ops\": %d, \"messages\": %s},\n\
      \     \"timing\": {\"jobs\": %d, \"build_s\": %.6f, \"churn_s\": %.6f, \
       \"churn_ops_per_s\": %.1f, \"query_s\": %.6f, \"query_ops_per_s\": %.1f},\n\
      \     \"write\": {\"batch\": %d, \"insert_s\": %.6f, \"remove_s\": %.6f, \
       \"write_ops_per_s\": %.1f},\n\
      \     \"latency\": {%s}}"
      r.n r.churn_ops r.churn_messages r.mean_update_msgs r.final_size write_ops
      r.write_mem_total r.query_ops (query_messages_json r) r.jobs r.build_s r.churn_s
      (float_of_int r.churn_ops /. Float.max 1e-9 r.churn_s)
      r.query_s
      (float_of_int r.query_ops /. Float.max 1e-9 r.query_s)
      r.write_batch r.write_insert_s r.write_remove_s
      (float_of_int write_ops /. Float.max 1e-9 write_s)
      (latency_json r)
  in
  Printf.sprintf
    "{\n  \"experiment\": \"scale\",\n  \"structure\": \"1-d generic skip-web (Hierarchy + \
     sorted lists)\",\n  \"workload\": \"bulk load, mixed churn (40%% insert / 40%% delete / \
     20%% query), a parallel query phase, then a parallel batch-write phase\",\n  \"rows\": \
     [\n%s\n  ]%s\n}\n"
    (String.concat ",\n" (List.map row_json rows))
    ((match multi_d with None -> "" | Some m -> ",\n" ^ m)
    ^ match sweep with None -> "" | Some s -> ",\n" ^ s)

let run (cfg : C.config) =
  C.section "Bulk load + churn + parallel queries: wall-clock scaling (E15)";
  let sizes =
    if cfg.C.quick then [ 1000; 10_000 ] else [ 1000; 10_000; 100_000; 1_000_000 ]
  in
  let rows =
    C.with_pool cfg (fun pool ->
        List.map
          (fun n ->
            let ops = max 500 (min 2000 (n / 10)) in
            measure ~pool ~seed:(List.hd cfg.C.seeds) ~n ~ops)
          sizes)
  in
  let tbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf "host-side wall clock: bulk load + churn + query phase (%d job(s))"
           cfg.C.jobs)
      ~columns:
        [
          "n"; "build (s)"; "churn ops"; "churn (s)"; "ops/s"; "mean upd msgs"; "p50 (us)";
          "p99 (us)"; "q ops"; "q (s)"; "q ops/s"; "w batch"; "w (s)"; "w ops/s";
        ]
  in
  List.iter
    (fun r ->
      let pct f =
        match Metrics.histogram_summary r.metrics "op_us" with
        | Some s -> Printf.sprintf "%.0f" (f s)
        | None -> "-"
      in
      Skipweb_util.Tables.add_row tbl
        [
          string_of_int r.n;
          Printf.sprintf "%.3f" r.build_s;
          string_of_int r.churn_ops;
          Printf.sprintf "%.3f" r.churn_s;
          Printf.sprintf "%.0f" (float_of_int r.churn_ops /. Float.max 1e-9 r.churn_s);
          Printf.sprintf "%.1f" r.mean_update_msgs;
          pct (fun s -> s.Skipweb_util.Stats.p50);
          pct (fun s -> s.Skipweb_util.Stats.p99);
          string_of_int r.query_ops;
          Printf.sprintf "%.3f" r.query_s;
          Printf.sprintf "%.0f" (float_of_int r.query_ops /. Float.max 1e-9 r.query_s);
          string_of_int r.write_batch;
          Printf.sprintf "%.3f" (r.write_insert_s +. r.write_remove_s);
          Printf.sprintf "%.0f"
            (float_of_int (2 * r.write_batch)
            /. Float.max 1e-9 (r.write_insert_s +. r.write_remove_s));
        ])
    rows;
  Skipweb_util.Tables.print tbl;
  (* Multi-dimensional rows: the same load/churn/parallel-query shape over
     the quadtree and trie instances, at sizes capped below the 1-d sweep
     (the structures carry per-node state the integer lists don't). *)
  let md_sizes = if cfg.C.quick then [ 1000; 10_000 ] else [ 1000; 10_000; 100_000 ] in
  let md_rows =
    C.with_pool cfg (fun pool ->
        List.concat_map
          (fun n ->
            let ops = max 200 (min 2000 (n / 10)) in
            [
              measure_points ~pool ~seed:(List.hd cfg.C.seeds) ~n ~ops;
              measure_strings ~pool ~seed:(List.hd cfg.C.seeds) ~n ~ops;
            ])
          md_sizes)
  in
  let mtbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf "multi-dimensional structures: load + churn + parallel queries (%d job(s))"
           cfg.C.jobs)
      ~columns:
        [
          "structure"; "n"; "build (s)"; "churn ops"; "churn (s)"; "ops/s"; "q ops"; "q (s)";
          "q ops/s"; "size";
        ]
  in
  List.iter
    (fun r ->
      Skipweb_util.Tables.add_row mtbl
        [
          r.md_structure;
          string_of_int r.md_n;
          Printf.sprintf "%.3f" r.md_build_s;
          string_of_int r.md_churn_ops;
          Printf.sprintf "%.3f" r.md_churn_s;
          Printf.sprintf "%.0f" (float_of_int r.md_churn_ops /. Float.max 1e-9 r.md_churn_s);
          string_of_int r.md_query_ops;
          Printf.sprintf "%.3f" r.md_query_s;
          Printf.sprintf "%.0f" (float_of_int r.md_query_ops /. Float.max 1e-9 r.md_query_s);
          string_of_int r.md_final_size;
        ])
    md_rows;
  Skipweb_util.Tables.print mtbl;
  (* The --jobs write sweep: the speedup curve of the chunk-sharded batch
     splice at the largest size, swept over its own pools — the headline
     number of the intra-level parallel write path. *)
  let sweep_n = List.fold_left max 0 sizes in
  let sweep_jobs =
    List.sort_uniq compare (List.map (fun j -> DPool.clamp_jobs ~warn:false j) [ 1; 2; 4 ])
  in
  let sweep_batch, points = write_sweep ~seed:(List.hd cfg.C.seeds) ~n:sweep_n sweep_jobs in
  let stbl =
    Skipweb_util.Tables.create
      ~title:
        (Printf.sprintf "batch-write speedup sweep (n = %d, batch = %d x insert + remove)"
           sweep_n sweep_batch)
      ~columns:[ "jobs"; "insert (s)"; "remove (s)"; "w ops/s"; "speedup" ]
  in
  let base =
    match points with p :: _ -> p.sw_insert_s +. p.sw_remove_s | [] -> 0.0
  in
  List.iter
    (fun p ->
      let total = p.sw_insert_s +. p.sw_remove_s in
      Skipweb_util.Tables.add_row stbl
        [
          string_of_int p.sw_jobs;
          Printf.sprintf "%.3f" p.sw_insert_s;
          Printf.sprintf "%.3f" p.sw_remove_s;
          Printf.sprintf "%.0f" (float_of_int (2 * sweep_batch) /. Float.max 1e-9 total);
          Printf.sprintf "%.2fx" (base /. Float.max 1e-9 total);
        ])
    points;
  Skipweb_util.Tables.print stbl;
  C.write_json ~file:"BENCH_scale.json"
    (json_of_rows
       ~sweep:(json_of_sweep ~n:sweep_n ~batch:sweep_batch points)
       ~multi_d:(json_of_md_rows md_rows) rows)
