(* E18: congestion — the C(n) = O(log n) claim for skip-webs.

   Static congestion (stored references + n/H query-start share) is in the
   Table 1 output; here we measure the dynamic side: per-host traffic under
   a uniform random query load. A well-balanced structure keeps the busiest
   host within a logarithmic factor of the mean. *)

module Network = Skipweb_net.Network
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module B1 = Skipweb_core.Blocked1d
module SG = Skipweb_skipgraph.Skip_graph
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module C = Bench_common

module HInt = H.Make (I.Ints)

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

let run (cfg : C.config) =
  C.section "Congestion under uniform query load (E18)";
  C.with_pool cfg @@ fun pool ->
  let n = List.fold_left max 256 cfg.C.sizes in
  let load = 10 * n in
  let keys = W.distinct_ints ~seed:3 ~n ~bound:(100 * n) in
  let qs = W.query_mix ~seed:4 ~keys ~n:load ~bound:(100 * n) in
  let drive label run_queries net =
    Network.reset_traffic net;
    run_queries ();
    Printf.printf
      "%-28s traffic: max %6d  mean %8.1f  max/mean %.2f   (%d queries on %d hosts)\n" label
      (Network.max_traffic net) (Network.mean_traffic net)
      (float_of_int (Network.max_traffic net) /. Float.max 1.0 (Network.mean_traffic net))
      load (Network.host_count net)
  in
  (* The skip-web query loads fan out over the --jobs pool: per-host
     traffic is committed through atomic counters as sums of visit
     deltas, so the congestion figures are bit-identical to the
     sequential drives for any jobs count. The baselines below draw
     per-query coins from a shared rng inside their loops, so they stay
     sequential. *)
  (* Blocked skip-web. *)
  let net1 = Network.create ~hosts:n in
  let b = B1.build ~net:net1 ~seed:5 ~m:(4 * log2i n) keys in
  let rng1 = Prng.create 6 in
  drive "blocked 1-d skip-web" (fun () -> ignore (B1.query_batch ?pool b ~rng:rng1 qs)) net1;
  (* Generic skip-web. *)
  let net2 = Network.create ~hosts:n in
  let h = HInt.build ~net:net2 ~seed:5 keys in
  let rng2 = Prng.create 6 in
  drive "generic 1-d skip-web" (fun () -> ignore (HInt.query_batch ?pool h ~rng:rng2 qs)) net2;
  (* Skip graph baseline. *)
  let net3 = Network.create ~hosts:n in
  let g = SG.create ~net:net3 ~seed:5 ~keys in
  let rng3 = Prng.create 6 in
  drive "skip graph" (fun () -> Array.iter (fun q -> ignore (SG.search_from_random g ~rng:rng3 q)) qs) net3;
  (* The family-tree comparator: O(1) degree but every search goes through
     the overlay root — the hotspot its Table 1 congestion column hides. *)
  let module FT = Skipweb_skipgraph.Family_tree in
  let net4 = Network.create ~hosts:n in
  let ft = FT.create ~net:net4 ~seed:5 ~keys in
  let rng4 = Prng.create 6 in
  drive "family tree (root hotspot)"
    (fun () -> Array.iter (fun q -> ignore (FT.search ft ~from:(Prng.int rng4 n) q)) qs)
    net4;
  (* Skewed demand: a Zipf(1.0) query mix hammers popular keys; the
     randomized level structure still spreads the load. *)
  let zipf = W.zipf_queries ~seed:9 ~keys ~n:load ~s:1.0 in
  let net5 = Network.create ~hosts:n in
  let b2 = B1.build ~net:net5 ~seed:5 ~m:(4 * log2i n) keys in
  let rng5 = Prng.create 6 in
  drive "blocked skip-web, Zipf load"
    (fun () -> ignore (B1.query_batch ?pool b2 ~rng:rng5 zipf))
    net5;
  Printf.printf
    "\nStatic congestion C(n) = max stored units + n/H:\n\
     blocked skip-web %.1f, generic skip-web %.1f, skip graph %.1f (all O(log n)-shaped)\n"
    (Network.congestion net1 ~items:n) (Network.congestion net2 ~items:n)
    (Network.congestion net3 ~items:n)
