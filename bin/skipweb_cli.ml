(* skipweb_cli: build any of the repository's distributed 1-d structures on
   the simulated network, drive a workload over it, and print the measured
   cost columns of Table 1 (M, C, Q, U).

   Examples:
     dune exec bin/skipweb_cli.exe -- query --structure skipweb -n 4096
     dune exec bin/skipweb_cli.exe -- query --structure non -n 1024 --queries 500
     dune exec bin/skipweb_cli.exe -- update --structure skipgraph -n 2048
     dune exec bin/skipweb_cli.exe -- load -s skipweb-generic -n 100000 --jobs 4
     dune exec bin/skipweb_cli.exe -- census -n 1024
     dune exec bin/skipweb_cli.exe -- churn -s skipweb-generic -n 2048 --r 2 --epochs 8
     dune exec bin/skipweb_cli.exe -- hotspots -s skipweb-generic -n 4096 --queries 2000 --alpha 1.3
     dune exec bin/skipweb_cli.exe -- serve -s skipweb-generic -n 4096 --ops 4000 --cache-replicas 4
     dune exec bin/skipweb_cli.exe -- monitor -s skipweb -n 2048 --epochs 12 --window 6
     dune exec bin/skipweb_cli.exe -- range -n 100000 --lo 0.2,0.2 --hi 0.6,0.6 --limit 10
     dune exec bin/skipweb_cli.exe -- knn -n 100000 --at 0.5,0.5 -k 8 --jobs 4
     dune exec bin/skipweb_cli.exe -- prefix -n 100000 --prefix 978-0- --limit 10

   --jobs threads a domain pool through both the read phases (query/stats)
   and the write paths (load's bulk build, update's rebuilds on the
   skip-web structures); every measured cost is bit-identical for any
   jobs count — only wall-clock time changes. *)

module Network = Skipweb_net.Network
module Trace = Skipweb_net.Trace
module Obs = Skipweb_net.Observatory
module Metrics = Skipweb_util.Metrics
module Sketch = Skipweb_util.Sketch
module Series = Skipweb_util.Series
module SG = Skipweb_skipgraph.Skip_graph
module NoN = Skipweb_skipgraph.Non_skip_graph
module FT = Skipweb_skipgraph.Family_tree
module DS = Skipweb_skipgraph.Det_skipnet
module BSG = Skipweb_skipgraph.Bucket_skip_graph
module B1 = Skipweb_core.Blocked1d
module H = Skipweb_core.Hierarchy
module I = Skipweb_core.Instances
module W = Skipweb_workload.Workload
module Prng = Skipweb_util.Prng
module Stats = Skipweb_util.Stats
module Tables = Skipweb_util.Tables

module HInt = H.Make (I.Ints)

type structure =
  | Skip_graph
  | Non_skip_graph
  | Family_tree
  | Det_skipnet
  | Bucket_skip_graph
  | Skipweb
  | Skipweb_generic

let structures =
  [
    ("skipgraph", Skip_graph);
    ("non", Non_skip_graph);
    ("family", Family_tree);
    ("detskipnet", Det_skipnet);
    ("bucket", Bucket_skip_graph);
    ("skipweb", Skipweb);
    ("skipweb-generic", Skipweb_generic);
  ]

let log2i n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  max 1 (go 0)

(* A uniform driver interface over all seven structures. *)
type driver = {
  describe : string;
  query : int -> int;  (* returns messages *)
  query_all : Skipweb_util.Pool.t option -> int array -> int array;
      (* batch query phase; fans out over the pool where the structure
         supports it, falls back to a sequential map otherwise. The
         message counts are identical to mapping [query] for any jobs
         count. *)
  insert : int -> int;
  delete : int -> int;
  query_traced : (Trace.t -> int -> int) option;
      (* traced single query, for per-level load attribution; only the
         skip-web structures carry level-attributable traces *)
  host_count : int;
  net : Network.t;  (* for traffic / memory distributions *)
}

let seq_batch query _pool qs = Array.map query qs

(* Monotonic wall clock for the load subcommand: elapsed time, not summed
   per-domain CPU time ([Sys.time] would report the latter and hide any
   parallel speedup). *)
let now () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

(* [pool] accelerates the skip-web structures only: it is passed to
   [B1.build]/[HInt.build] (per-level bulk construction) and kept by the
   blocked structure for its update-triggered rebuilds, so it must outlive
   the driver — every caller scopes driver creation and use inside one
   [Pool.with_pool]. The overlay baselines build node-by-node and ignore
   it. *)
let make_driver structure ~net_pad ~seed ~m ~buckets ?(cache = (0, 1)) ?pool keys =
  let n = Array.length keys in
  let cache_levels, cache_replicas = cache in
  let cache_tag =
    if cache_replicas > 1 then Printf.sprintf ", cache c=%d k=%d" cache_levels cache_replicas
    else ""
  in
  match structure with
  | Skip_graph ->
      let net = Network.create ~hosts:(n + net_pad) in
      let g = SG.create ~net ~seed ~keys in
      let rng = Prng.create (seed + 1) in
      let query q = (SG.search_from_random g ~rng q).SG.messages in
      {
        describe = "skip graph (Aspnes-Shah) / SkipNet, H = n";
        query;
        query_all = seq_batch query;
        insert = SG.insert g;
        delete = SG.delete g;
        query_traced = None;
        host_count = Network.host_count net;
        net;
      }
  | Non_skip_graph ->
      let net = Network.create ~hosts:(n + net_pad) in
      let g = NoN.create ~net ~seed ~keys in
      let rng = Prng.create (seed + 1) in
      let query q = (NoN.search_from_random g ~rng q).NoN.messages in
      {
        describe = "NoN skip graph (Manku-Naor-Wieder lookahead), H = n";
        query;
        query_all = seq_batch query;
        insert = NoN.insert g;
        delete = NoN.delete g;
        query_traced = None;
        host_count = Network.host_count net;
        net;
      }
  | Family_tree ->
      let net = Network.create ~hosts:(n + net_pad) in
      let g = FT.create ~net ~seed ~keys in
      let rng = Prng.create (seed + 1) in
      let query q = (FT.search g ~from:(Prng.int rng (max 1 (FT.size g))) q).FT.messages in
      {
        describe = "family tree comparator (constant-degree overlay), H = n";
        query;
        query_all = seq_batch query;
        insert = FT.insert g;
        delete = FT.delete g;
        query_traced = None;
        host_count = Network.host_count net;
        net;
      }
  | Det_skipnet ->
      let net = Network.create ~hosts:((2 * n) + net_pad + 4) in
      let g = DS.create ~net ~keys in
      let query q = (DS.search g ~from:0 q).DS.messages in
      {
        describe = "deterministic SkipNet (1-2-3 skip list), H = n";
        query;
        query_all = seq_batch query;
        insert = DS.insert g;
        delete = DS.delete g;
        query_traced = None;
        host_count = Network.host_count net;
        net;
      }
  | Bucket_skip_graph ->
      let hosts = match buckets with Some b -> b | None -> max 2 (n / log2i n) in
      let net = Network.create ~hosts:(2 * hosts) in
      let g = BSG.create ~net ~seed ~keys ~buckets:hosts in
      let rng = Prng.create (seed + 1) in
      let query q = (BSG.search g ~rng q).BSG.messages in
      {
        describe = Printf.sprintf "bucket skip graph, H = %d < n" hosts;
        query;
        query_all = seq_batch query;
        insert = (fun k -> BSG.insert g ~rng k);
        delete = (fun k -> BSG.delete g ~rng k);
        query_traced = None;
        host_count = Network.host_count net;
        net;
      }
  | Skipweb ->
      let net = Network.create ~hosts:(n + net_pad) in
      let m = match m with Some m -> m | None -> 4 * log2i n in
      let g = B1.build ~net ~seed ~m ~cache_levels ~cache_replicas ?pool keys in
      let rng = Prng.create (seed + 1) in
      {
        describe = Printf.sprintf "skip-web, blocked (§2.4.1), H = n, M = %d%s" m cache_tag;
        query = (fun q -> (B1.query g ~rng q).B1.messages);
        query_all =
          (fun pool qs ->
            Array.map
              (fun (r : B1.search_result) -> r.B1.messages)
              (B1.query_batch ?pool g ~rng qs));
        insert = B1.insert g;
        delete = B1.delete g;
        query_traced = Some (fun tr q -> (B1.query ~trace:tr g ~rng q).B1.messages);
        host_count = Network.host_count net;
        net;
      }
  | Skipweb_generic ->
      let net = Network.create ~hosts:(n + net_pad) in
      let g = HInt.build ~net ~seed ~cache_levels ~cache_replicas ?pool keys in
      let rng = Prng.create (seed + 1) in
      {
        describe = "skip-web, arbitrary placement (§2.4 general)" ^ cache_tag;
        query =
          (fun q ->
            let _, stats = HInt.query g ~rng q in
            stats.HInt.messages);
        query_all =
          (fun pool qs ->
            Array.map (fun (_, stats) -> stats.HInt.messages) (HInt.query_batch ?pool g ~rng qs));
        insert = HInt.insert g;
        delete = HInt.remove g;
        query_traced =
          Some
            (fun tr q ->
              let _, stats = HInt.query ~trace:tr g ~rng q in
              stats.HInt.messages);
        host_count = Network.host_count net;
        net;
      }

let run_query structure n queries seed m buckets jobs =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  (* The measured costs are identical for any --jobs value; the pool only
     spreads the build sweeps and query walks over domains. *)
  let d, msgs =
    Skipweb_util.Pool.with_pool ~jobs (fun pool ->
        let d = make_driver structure ~net_pad:16 ~seed ~m ~buckets ?pool keys in
        let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
        (d, d.query_all pool qs))
  in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf "items: %d   hosts: %d   queries: %d   jobs: %d\n\n" n d.host_count queries
    (max 1 jobs);
  let costs = Array.to_list (Array.map float_of_int msgs) in
  let s = Stats.summarize costs in
  let t = Tables.create ~title:"query message cost Q(n)" ~columns:[ "mean"; "p50"; "p90"; "p99"; "max" ] in
  Tables.add_row t
    [
      Tables.cell_float s.Stats.mean;
      Tables.cell_float s.Stats.p50;
      Tables.cell_float s.Stats.p90;
      Tables.cell_float s.Stats.p99;
      Tables.cell_float s.Stats.max;
    ];
  Tables.print t;
  0

let run_update structure n updates seed m buckets jobs =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  (* The whole write workload runs inside the pool scope: the blocked
     skip-web keeps the pool it was built with and fans its
     update-triggered rebuilds over it, so the pool must stay alive until
     the last delete. Message costs are identical for any --jobs value. *)
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let d = make_driver structure ~net_pad:(updates + 16) ~seed ~m ~buckets ?pool keys in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf "items: %d   hosts: %d   updates: %d   jobs: %d\n" n d.host_count updates
    (max 1 jobs);
  let rng = Prng.create (seed + 3) in
  let inserted = ref [] in
  let insert_costs = ref [] in
  let fresh () =
    let rec go () =
      let k = (100 * n) + Prng.int rng (100 * n) in
      if List.mem k !inserted then go () else k
    in
    go ()
  in
  for _ = 1 to updates do
    let k = fresh () in
    insert_costs := float_of_int (d.insert k) :: !insert_costs;
    inserted := k :: !inserted
  done;
  let delete_costs =
    List.filter_map
      (fun k -> try Some (float_of_int (d.delete k)) with Invalid_argument _ -> None)
      !inserted
  in
  let t = Tables.create ~title:"update message cost U(n)" ~columns:[ "op"; "count"; "mean"; "max" ] in
  let s = Stats.summarize !insert_costs in
  Tables.add_row t [ "insert"; string_of_int s.Stats.count; Tables.cell_float s.Stats.mean; Tables.cell_float s.Stats.max ];
  (match delete_costs with
  | [] -> Tables.add_row t [ "delete"; "0"; "n/a"; "n/a" ]
  | _ ->
      let s = Stats.summarize delete_costs in
      Tables.add_row t
        [ "delete"; string_of_int s.Stats.count; Tables.cell_float s.Stats.mean; Tables.cell_float s.Stats.max ]);
  Tables.print t;
  0

(* Bulk-load a structure and report its storage footprint plus the build
   wall clock. Everything except the "wall clock" line is deterministic
   and bit-identical for any --jobs value, so two runs can be diffed with
   the timing stripped (grep -v 'wall clock') to check the contract. *)
let run_load structure n seed m buckets jobs =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let t0 = now () in
  let d = make_driver structure ~net_pad:16 ~seed ~m ~buckets ?pool keys in
  let build_s = now () -. t0 in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf "items: %d   hosts: %d   jobs: %d\n\n" n d.host_count (max 1 jobs);
  let mem = Array.init d.host_count (fun h -> Network.memory d.net h) in
  let total = Array.fold_left ( + ) 0 mem in
  let busiest = Array.fold_left max 0 mem in
  let t = Tables.create ~title:"bulk load" ~columns:[ "metric"; "value" ] in
  Tables.add_row t [ "total memory (units)"; string_of_int total ];
  Tables.add_row t [ "busiest host (units)"; string_of_int busiest ];
  Tables.add_row t
    [ "mean per host (units)"; Tables.cell_float (float_of_int total /. float_of_int d.host_count) ];
  Tables.add_row t [ "build messages"; string_of_int (Network.total_messages d.net) ];
  Tables.print t;
  Printf.printf "build wall clock: %.3f s (%.0f keys/s)\n" build_s
    (float_of_int n /. Float.max build_s 1e-9);
  0

let run_census n seed =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let net = Network.create ~hosts:n in
  let h = HInt.build ~net ~seed keys in
  Printf.printf "1-d skip-web level census (Figure 2), n = %d\n\n" n;
  let t =
    Tables.create ~title:"levels" ~columns:[ "level"; "sets"; "elements"; "largest set" ]
  in
  for level = 0 to HInt.levels h - 1 do
    let sizes = HInt.level_set_sizes h level in
    Tables.add_row t
      [
        string_of_int level;
        string_of_int (List.length sizes);
        string_of_int (List.fold_left ( + ) 0 sizes);
        string_of_int (List.fold_left max 0 sizes);
      ]
  done;
  Tables.print t;
  Printf.printf "total stored ranges: %d (O(n log n))\n" (HInt.total_storage h);
  Printf.printf "busiest host stores: %d units (O(log n) under hashed placement)\n"
    (Network.max_memory net);
  0

(* ---------------- trace: one op, rendered hop tree ---------------- *)

let print_per_level_table tr =
  let t =
    Tables.create ~title:"messages per level (top-down)" ~columns:[ "level"; "messages" ]
  in
  List.iter
    (fun (level, msgs) -> Tables.add_row t [ string_of_int level; string_of_int msgs ])
    (List.rev (Trace.per_level_hops tr));
  (match Trace.unattributed_hops tr with
  | 0 -> ()
  | u -> Tables.add_row t [ "(none)"; string_of_int u ]);
  Tables.print t

(* The acceptance check of the trace layer, printed so every run shows it:
   the per-level decomposition must account for every message the session
   paid. *)
let print_sum_check tr session_messages =
  let sum =
    List.fold_left
      (fun acc (_, c) -> acc + c)
      (Trace.unattributed_hops tr) (Trace.per_level_hops tr)
  in
  Printf.printf "per-level total = %d, session messages = %d%s\n" sum session_messages
    (if sum = session_messages then "  [consistent]" else "  [MISMATCH]");
  if sum = session_messages then 0 else 1

let run_trace structure n seed m at =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  let q = match at with Some q -> q | None -> 50 * n in
  let tr = Trace.create () in
  match structure with
  | Skipweb_generic ->
      let net = Network.create ~hosts:n in
      let h = HInt.build ~net ~seed keys in
      let rng = Prng.create (seed + 1) in
      let answer, stats = HInt.query ~trace:tr h ~rng q in
      Printf.printf "structure: skip-web, arbitrary placement (§2.4 general)\n";
      Printf.printf "n = %d   query %d -> nearest %s\n\n" n q
        (match answer with Some a -> string_of_int a | None -> "none");
      print_string (Trace.render tr);
      print_newline ();
      print_per_level_table tr;
      print_sum_check tr stats.HInt.messages
  | Skipweb ->
      let net = Network.create ~hosts:n in
      let m = match m with Some m -> m | None -> 4 * log2i n in
      let b = B1.build ~net ~seed ~m keys in
      let rng = Prng.create (seed + 1) in
      let r = B1.query ~trace:tr b ~rng q in
      Printf.printf "structure: skip-web, blocked (§2.4.1), M = %d\n" m;
      Printf.printf "n = %d   query %d -> nearest %s\n\n" n q
        (match r.B1.nearest with Some a -> string_of_int a | None -> "none");
      print_string (Trace.render tr);
      print_newline ();
      print_per_level_table tr;
      print_sum_check tr r.B1.messages
  | _ ->
      prerr_endline "trace: only skipweb and skipweb-generic queries are traceable";
      1

(* ---------------- stats: a workload into a metrics registry ---------------- *)

type stats_format = Table | Json | Csv

let run_stats structure n queries updates seed m buckets format jobs pool_stats =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  (* The build, query and update phases all run inside one pool scope: the
     build fans its per-level sweeps out, the query phase fans its walks
     out, and the blocked skip-web keeps the pool for update-triggered
     rebuilds. Message counts come back in index-slotted arrays and are
     recorded sequentially, so the registry (and the json/csv dumps) are
     byte-identical for any jobs count. *)
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let d = make_driver structure ~net_pad:(updates + 16) ~seed ~m ~buckets ?pool keys in
  let reg = Metrics.create () in
  let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:queries ~bound:(100 * n) in
  let msgs = d.query_all pool qs in
  Array.iter
    (fun m ->
      Metrics.incr reg "ops.query";
      Metrics.observe_int reg "query.messages" m)
    msgs;
  let fresh =
    (* Fresh keys above the stored domain, so inserts always succeed. *)
    let rng = Prng.create (seed + 3) in
    let taken = Hashtbl.create updates in
    Array.init updates (fun _ ->
        let rec go () =
          let k = (100 * n) + Prng.int rng (100 * n) in
          if Hashtbl.mem taken k then go ()
          else begin
            Hashtbl.replace taken k ();
            k
          end
        in
        go ())
  in
  Array.iter
    (fun k ->
      Metrics.incr reg "ops.insert";
      Metrics.observe_int reg "insert.messages" (d.insert k))
    fresh;
  Array.iter
    (fun k ->
      try
        let msgs = d.delete k in
        Metrics.incr reg "ops.delete";
        Metrics.observe_int reg "delete.messages" msgs
      with Invalid_argument _ -> ())
    fresh;
  for host = 0 to d.host_count - 1 do
    Metrics.observe_int reg "host.traffic" (Network.traffic d.net host);
    Metrics.observe_int reg "host.memory" (Network.memory d.net host)
  done;
  Metrics.incr reg ~by:(Network.total_messages d.net) "network.messages";
  Metrics.incr reg ~by:(Network.sessions_started d.net) "network.sessions";
  Metrics.incr reg ~by:(Network.live_hosts d.net) "network.live_hosts";
  Metrics.incr reg ~by:(Network.stranded_memory d.net) "network.stranded_memory";
  (* Pool utilization rides along only on request: the figures are
     wall-clock and jobs-dependent, so by default the registry dump stays
     byte-identical for any jobs count. *)
  (if pool_stats then
     match pool with
     | Some p -> Skipweb_util.Pool.record_metrics p reg
     | None -> ());
  (match format with
  | Json -> print_string (Metrics.to_json reg)
  | Csv -> print_string (Metrics.to_csv reg)
  | Table ->
      Printf.printf "structure: %s\n" d.describe;
      Printf.printf "items: %d   hosts: %d   queries: %d   updates: %d\n\n" n d.host_count
        queries updates;
      let t =
        Tables.create ~title:"metrics registry"
          ~columns:[ "name"; "kind"; "value/count"; "mean"; "p50"; "p90"; "p99"; "max" ]
      in
      List.iter
        (fun name ->
          match Metrics.histogram_summary reg name with
          | Some s ->
              Tables.add_row t
                [
                  name;
                  "histogram";
                  string_of_int s.Stats.count;
                  Tables.cell_float s.Stats.mean;
                  Tables.cell_float s.Stats.p50;
                  Tables.cell_float s.Stats.p90;
                  Tables.cell_float s.Stats.p99;
                  Tables.cell_float s.Stats.max;
                ]
          | None ->
              Tables.add_row t
                [ name; "counter"; string_of_int (Metrics.counter_value reg name); ""; ""; ""; ""; "" ])
        (Metrics.names reg);
      Tables.print t);
  0

(* ---------------- hotspots / monitor: the congestion observatory ---------------- *)

(* The hotspot workload: even slots uniform over the key domain, odd
   slots Zipf(1.1)-popular stored keys — popularity skew on top of the
   structural skew the upper levels already create. *)
let mixed_queries ~seed ~keys ~total ~bound ?(s = 1.1) () =
  let total = if total mod 2 = 1 then total + 1 else total in
  let half = total / 2 in
  let z = W.zipf_queries ~seed:(seed + 0x21f) ~keys ~n:half ~s in
  let rng = Prng.create (seed + 0x0b5) in
  let u = Array.init half (fun _ -> Prng.int rng bound) in
  Array.init total (fun i -> if i mod 2 = 0 then u.(i / 2) else z.(i / 2))

(* Where does a skewed workload's load land? Drive mixed uniform +
   Zipf(1.1) queries with the observatory attached as the network's
   streaming tap — every finished session reports into the space-saving
   top-k and the message-count sketch, in memory independent of the
   query count — then print the hottest hosts, the per-host congestion
   percentiles and Gini, and (for the skip-web structures) the
   per-level attribution from a small traced sample. *)
let run_hotspots structure n queries seed m buckets k alpha cache jobs pool_stats =
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let d = make_driver structure ~net_pad:16 ~seed ~m ~buckets ~cache ?pool keys in
  let qs = mixed_queries ~seed:(seed + 2) ~keys ~total:queries ~bound:(100 * n) ~s:alpha () in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf "items: %d   hosts: %d   queries: %d (half uniform, half Zipf %.2f)\n" n
    d.host_count (Array.length qs) alpha;
  (match cache with
  | _, ck when ck > 1 ->
      Printf.printf "level cache: c = %d coarse levels x k = %d replicas (per-origin routing)\n\n"
        (fst cache) ck
  | _ -> print_newline ());
  let obs = Obs.create ~k () in
  (* Attribution sample first (traced, sequential), then reset the
     workload counters so the congestion snapshot describes the tapped
     main phase only. *)
  (match d.query_traced with
  | None -> ()
  | Some qt ->
      let sample = min 32 (Array.length qs) in
      for i = 0 to sample - 1 do
        let tr = Trace.create () in
        ignore (qt tr qs.(i) : int);
        Obs.observe_trace obs tr
      done);
  Network.reset_traffic d.net;
  Obs.attach obs d.net;
  Array.iter (fun q -> ignore (d.query q : int)) qs;
  Obs.detach d.net;
  let total_visits = max 1 (Obs.visits_seen obs) in
  let t =
    Tables.create
      ~title:(Printf.sprintf "hottest hosts (space-saving top-%d)" k)
      ~columns:[ "host"; "visits<="; "err"; "share" ]
  in
  List.iter
    (fun (h, c, e) ->
      Tables.add_row t
        [
          string_of_int h;
          string_of_int c;
          string_of_int e;
          Printf.sprintf "%.2f%%" (100.0 *. float_of_int c /. float_of_int total_visits);
        ])
    (Obs.hot_hosts obs);
  Tables.print t;
  Printf.printf
    "(space-saving guarantee: every host with more than total/k = %d visits is listed;\n\
    \ err bounds the overcount — err close to visits<= means no host dominates)\n\n"
    (total_visits / k);
  (match Obs.message_summary obs with
  | None -> ()
  | Some s ->
      let t =
        Tables.create ~title:"query message cost (constant-memory sketch)"
          ~columns:[ "ops"; "mean"; "p50"; "p90"; "p99"; "max" ]
      in
      Tables.add_row t
        [
          string_of_int s.Stats.count;
          Tables.cell_float s.Stats.mean;
          Tables.cell_float s.Stats.p50;
          Tables.cell_float s.Stats.p90;
          Tables.cell_float s.Stats.p99;
          Tables.cell_float s.Stats.max;
        ];
      Tables.print t);
  let c = Obs.congestion_of d.net in
  let t =
    Tables.create ~title:"per-host congestion (live hosts)"
      ~columns:[ "live"; "visits"; "mean"; "p50"; "p90"; "p99"; "max"; "gini" ]
  in
  Tables.add_row t
    [
      string_of_int c.Obs.live;
      string_of_int c.Obs.total_traffic;
      Tables.cell_float c.Obs.mean;
      Tables.cell_float c.Obs.p50;
      Tables.cell_float c.Obs.p90;
      Tables.cell_float c.Obs.p99;
      Tables.cell_float c.Obs.max;
      Printf.sprintf "%.4f" c.Obs.gini;
    ];
  Tables.print t;
  (match Obs.per_level_hops obs with
  | [] -> ()
  | levels ->
      let t =
        Tables.create
          ~title:(Printf.sprintf "per-level load attribution (%d traced samples)" (Obs.traced_ops obs))
          ~columns:[ "level"; "hops" ]
      in
      List.iter
        (fun (level, hops) -> Tables.add_row t [ string_of_int level; string_of_int hops ])
        levels;
      (match Obs.unattributed_hops obs with
      | 0 -> ()
      | u -> Tables.add_row t [ "(none)"; string_of_int u ]);
      Tables.print t);
  (* Per-slot pool utilization on request only — wall-clock figures, so
     the default output stays comparable across jobs counts. *)
  (if pool_stats then
     match pool with
     | None -> Printf.printf "pool utilization: sequential run (--jobs 1), no pool\n"
     | Some p ->
         let u = Skipweb_util.Pool.utilization p in
         let t =
           Tables.create
             ~title:(Printf.sprintf "pool utilization (%d slots)" (Array.length u.Skipweb_util.Pool.tasks))
             ~columns:[ "slot"; "tasks"; "busy s" ]
         in
         Array.iteri
           (fun i n ->
             Tables.add_row t
               [
                 string_of_int i;
                 string_of_int n;
                 Printf.sprintf "%.4f" u.Skipweb_util.Pool.busy_s.(i);
               ])
           u.Skipweb_util.Pool.tasks;
         Tables.print t);
  0

(* Watch a workload evolve: run [epochs] query batches and push one
   value per epoch into fixed-size Series rings (mean and p99 message
   cost from a per-epoch sketch, total messages). Only the last
   [window] epochs are retained — the memory story of a long-lived
   monitoring loop — and the table prints exactly that window. *)
let run_monitor structure n queries epochs window seed m buckets jobs =
  if epochs < 1 || window < 1 then begin
    prerr_endline "monitor: --epochs and --window must be >= 1";
    exit 2
  end;
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let d = make_driver structure ~net_pad:16 ~seed ~m ~buckets ?pool keys in
  let qs = mixed_queries ~seed:(seed + 2) ~keys ~total:(epochs * queries) ~bound:(100 * n) () in
  let qper = Array.length qs / epochs in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf "items: %d   hosts: %d   epochs: %d x %d queries   window: %d   jobs: %d\n\n" n
    d.host_count epochs qper window (max 1 jobs);
  Network.reset_traffic d.net;
  let mean_s = Series.create ~window in
  let p99_s = Series.create ~window in
  let msgs_s = Series.create ~window in
  for e = 0 to epochs - 1 do
    let before = Network.total_messages d.net in
    let batch = Array.sub qs (e * qper) qper in
    let msgs = d.query_all pool batch in
    (* One bounded sketch per epoch: the per-epoch distribution without
       retaining the per-query array beyond the batch. *)
    let sk = Sketch.create () in
    Array.iter (Sketch.observe_int sk) msgs;
    let s = Sketch.summary sk in
    Series.push mean_s s.Stats.mean;
    Series.push p99_s s.Stats.p99;
    Series.push msgs_s (float_of_int (Network.total_messages d.net - before))
  done;
  let t =
    Tables.create
      ~title:(Printf.sprintf "monitored window (last %d of %d epochs)" (Series.length mean_s) epochs)
      ~columns:[ "epoch"; "msgs/op mean"; "msgs/op p99"; "messages" ]
  in
  List.iteri
    (fun i (epoch, mean) ->
      Tables.add_row t
        [
          string_of_int epoch;
          Tables.cell_float mean;
          Tables.cell_float (Series.nth p99_s i);
          Printf.sprintf "%.0f" (Series.nth msgs_s i);
        ])
    (Series.to_list mean_s);
  Tables.print t;
  (match Series.summary mean_s with
  | None -> ()
  | Some s ->
      Printf.printf "window msgs/op mean: %.2f (min %.2f, max %.2f over retained epochs)\n"
        s.Stats.mean s.Stats.min s.Stats.max);
  let c = Obs.congestion_of d.net in
  Printf.printf "congestion: p50 %.0f  p90 %.0f  p99 %.0f  max %.0f  gini %.4f\n" c.Obs.p50
    c.Obs.p90 c.Obs.p99 c.Obs.max c.Obs.gini;
  Printf.printf "live hosts: %d/%d   stranded memory: %d units\n" (Network.live_hosts d.net)
    (Network.host_count d.net)
    (Network.stranded_memory d.net);
  0

(* ---------------- serve: open-loop skewed traffic ---------------- *)

module OL = Skipweb_workload.Open_loop

(* Serve an open-loop workload: Poisson arrivals at --rate, a --read-fraction
   read/write mix, queries blended half-uniform / half-Zipf(--alpha) over the
   stored keys. The whole plan is derived from the seed up front
   ([Open_loop.plan]), so a run is replayable — and comparable across
   --cache-replicas settings, which is the point: the level cache must
   flatten the congestion table without moving the msgs/op sketch. *)
let run_serve structure n ops rate read_fraction seed m buckets alpha cache jobs =
  let bound = 100 * n in
  let keys = W.distinct_ints ~seed ~n ~bound in
  let spec =
    { OL.seed = seed + 0x5e0; ops; rate; read_fraction; zipf_share = 0.5; zipf_s = alpha; bound }
  in
  let events = OL.plan spec ~keys in
  let counts = OL.counts events in
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let d = make_driver structure ~net_pad:(counts.OL.inserts + 16) ~seed ~m ~buckets ~cache ?pool keys in
  Printf.printf "structure: %s\n" d.describe;
  Printf.printf
    "items: %d   hosts: %d   ops: %d (%d queries / %d inserts / %d removes)\n\
     open loop: rate %.0f ops/s, %.0f simulated seconds; queries half uniform, half Zipf %.2f\n"
    n d.host_count ops counts.OL.queries counts.OL.inserts counts.OL.removes rate
    (OL.duration events) alpha;
  (match cache with
  | cl, ck when ck > 1 ->
      Printf.printf "level cache: c = %d coarse levels x k = %d replicas (per-origin routing)\n\n"
        cl ck
  | _ -> print_newline ());
  Network.reset_traffic d.net;
  let sk = Sketch.create () in
  let t0 = now () in
  Array.iter
    (fun e ->
      match e.OL.op with
      | OL.Query q -> Sketch.observe_int sk (d.query q)
      | OL.Insert k -> ignore (d.insert k : int)
      | OL.Remove k -> ignore (try d.delete k with Invalid_argument _ -> 0))
    events;
  let wall_s = now () -. t0 in
  let s = Sketch.summary sk in
  let t =
    Tables.create ~title:"query message cost (per-op sketch)"
      ~columns:[ "ops"; "mean"; "p50"; "p90"; "p99"; "max" ]
  in
  Tables.add_row t
    [
      string_of_int s.Stats.count;
      Tables.cell_float s.Stats.mean;
      Tables.cell_float s.Stats.p50;
      Tables.cell_float s.Stats.p90;
      Tables.cell_float s.Stats.p99;
      Tables.cell_float s.Stats.max;
    ];
  Tables.print t;
  let c = Obs.congestion_of d.net in
  let t =
    Tables.create ~title:"per-host congestion (live hosts)"
      ~columns:[ "live"; "visits"; "mean"; "p50"; "p90"; "p99"; "max"; "gini"; "top16 share" ]
  in
  Tables.add_row t
    [
      string_of_int c.Obs.live;
      string_of_int c.Obs.total_traffic;
      Tables.cell_float c.Obs.mean;
      Tables.cell_float c.Obs.p50;
      Tables.cell_float c.Obs.p90;
      Tables.cell_float c.Obs.p99;
      Tables.cell_float c.Obs.max;
      Printf.sprintf "%.4f" c.Obs.gini;
      Printf.sprintf "%.4f" (Obs.top_share d.net ~m:16);
    ];
  Tables.print t;
  Printf.printf "total messages: %d   served in %.3f s wall clock\n"
    (Network.total_messages d.net) wall_s;
  0

(* ---------------- churn: kill/rejoin epochs + self-repair ---------------- *)

(* Drive failure epochs against a replicated skip-web: each epoch kills
   [fails] live hosts, runs a query batch (a walk whose every replica is
   dead records a failed query instead of aborting the run), runs one
   repair pass, then revives the victims. Only the two skip-web
   structures support replication and repair; the overlay baselines have
   no failure story. *)
let run_churn structure n queries seed m r epochs fails jobs =
  if r < 1 then begin
    prerr_endline "churn: --r must be >= 1";
    exit 2
  end;
  let fails = match fails with Some f -> f | None -> max 1 (r - 1) in
  let keys = W.distinct_ints ~seed ~n ~bound:(100 * n) in
  Skipweb_util.Pool.with_pool ~jobs @@ fun pool ->
  let ops =
    match structure with
    | Skipweb ->
        let net = Network.create ~hosts:n in
        let m = match m with Some m -> m | None -> 4 * log2i n in
        let g = B1.build ~net ~seed ~m ~r ?pool keys in
        let query_one rng q = (B1.query g ~rng q).B1.messages in
        let repair () =
          let s : B1.repair_stats = B1.repair g in
          (s.B1.repaired, s.B1.messages, s.B1.lost)
        in
        Some
          (net, query_one, repair, Printf.sprintf "skip-web, blocked (§2.4.1), M = %d, r = %d" m r)
    | Skipweb_generic ->
        let net = Network.create ~hosts:n in
        let g = HInt.build ~net ~seed ~r ?pool keys in
        let query_one rng q =
          let _, stats = HInt.query g ~rng q in
          stats.HInt.messages
        in
        let repair () =
          let s : HInt.repair_stats = HInt.repair g in
          (s.HInt.repaired, s.HInt.messages, s.HInt.lost)
        in
        Some (net, query_one, repair, Printf.sprintf "skip-web, arbitrary placement (§2.4), r = %d" r)
    | _ -> None
  in
  match ops with
  | None ->
      prerr_endline "churn: only skipweb and skipweb-generic support replication and repair";
      1
  | Some (net, query_one, repair, describe) ->
      Printf.printf "structure: %s\n" describe;
      Printf.printf "items: %d   hosts: %d   epochs: %d   failures/epoch: %d   queries/epoch: %d\n\n"
        n (Network.host_count net) epochs fails queries;
      let qs = W.query_mix ~seed:(seed + 2) ~keys ~n:(epochs * queries) ~bound:(100 * n) in
      let coins = Prng.create (seed + 0xc41) in
      let krng = Prng.create (seed + 0x4b1) in
      let t = Tables.create ~title:"churn epochs"
          ~columns:[ "epoch"; "killed"; "ok"; "failed"; "repair msgs"; "lost"; "stranded" ]
      in
      let total_ok = ref 0 and total_failed = ref 0 and total_lost = ref 0 in
      for e = 0 to epochs - 1 do
        let killed = ref [] in
        while List.length !killed < fails do
          let h = Prng.int krng (Network.host_count net) in
          if Network.alive net h && Network.live_hosts net > 1 then begin
            Network.kill net h;
            killed := h :: !killed
          end
        done;
        let stranded = Network.stranded_memory net in
        let ok = ref 0 and failed = ref 0 in
        for i = e * queries to ((e + 1) * queries) - 1 do
          match query_one (Prng.stream coins i) qs.(i) with
          | (_ : int) -> incr ok
          | exception Network.Host_dead _ -> incr failed
        done;
        let _, rmsgs, lost = repair () in
        List.iter (Network.revive net) !killed;
        total_ok := !total_ok + !ok;
        total_failed := !total_failed + !failed;
        total_lost := !total_lost + lost;
        Tables.add_row t
          [
            string_of_int e;
            String.concat "," (List.map string_of_int (List.rev !killed));
            string_of_int !ok;
            string_of_int !failed;
            string_of_int rmsgs;
            string_of_int lost;
            string_of_int stranded;
          ]
      done;
      Tables.print t;
      let rate = float_of_int !total_ok /. float_of_int (epochs * queries) in
      Printf.printf "query success rate: %.4f (%d/%d)\n" rate !total_ok (epochs * queries);
      Printf.printf "live hosts: %d/%d   stranded memory: %d units\n" (Network.live_hosts net)
        (Network.host_count net) (Network.stranded_memory net);
      if r >= 2 && fails <= r - 1 && (!total_failed > 0 || !total_lost > 0) then begin
        Printf.printf
          "FAIL: r = %d with %d failures/epoch must lose nothing (failed %d, lost %d)\n" r fails
          !total_failed !total_lost;
        1
      end
      else 0

(* ---------------- range / knn / prefix: the multi-d scan surfaces ---------------- *)

module HP2 = H.Make (I.Points2d)
module HStr = H.Make (I.Strings)
module Point = Skipweb_geom.Point

(* Each subcommand builds the multi-dimensional skip-web under the --jobs
   pool, runs one detailed scan (printed in full), then fans a seeded
   sweep of --queries scans over the pool through [scan_batch]. No wall
   clock is printed: every line of output is bit-identical for any
   --jobs value. *)

let build_points ~n ~seed ~pool =
  let pts = W.uniform_points ~seed ~n ~dim:2 in
  let net = Network.create ~hosts:n in
  let h = HP2.build ~net ~seed ?pool pts in
  Printf.printf "quadtree-2d skip-web: %d stored points, %d hosts\n" (HP2.size h)
    (Network.host_count net);
  h

let run_range n queries seed lo hi limit jobs =
  Skipweb_util.Pool.with_pool ~jobs (fun pool ->
      let h = build_points ~n ~seed ~pool in
      let lo = Point.create [ fst lo; snd lo ] and hi = Point.create [ fst hi; snd hi ] in
      let answer, stats =
        HP2.scan h ~rng:(Prng.create (seed + 1)) (I.Box { lo; hi; limit })
      in
      (match answer with
      | I.Box_hits { count; sample } ->
          Printf.printf "box %s .. %s (limit %d): %d points\n" (Point.to_string lo)
            (Point.to_string hi) limit count;
          List.iter (fun p -> Printf.printf "  %s\n" (Point.to_string p)) sample
      | I.Knn_hits _ -> assert false);
      Printf.printf "messages=%d ranges_visited=%d\n" stats.HP2.messages stats.HP2.ranges_visited;
      (* The sweep: side-0.15 boxes at seeded uniform corners. *)
      let corners = W.uniform_query_points ~seed:(seed + 3) ~n:queries ~dim:2 in
      let scans =
        Array.map
          (fun (c : Point.t) ->
            let x = Float.min c.(0) 0.8 and y = Float.min c.(1) 0.8 in
            I.Box
              { lo = Point.create [ x; y ]; hi = Point.create [ x +. 0.15; y +. 0.15 ]; limit })
          corners
      in
      let res = HP2.scan_batch ?pool h ~rng:(Prng.create (seed + 4)) scans in
      let hits = ref 0 and msgs = ref 0 in
      Array.iter
        (fun (a, s) ->
          (match a with I.Box_hits { count; _ } -> hits := !hits + count | I.Knn_hits _ -> ());
          msgs := !msgs + s.HP2.messages)
        res;
      Printf.printf "sweep: %d boxes (side 0.15): %d total hits, %d messages (%.1f msgs/scan)\n"
        queries !hits !msgs
        (float_of_int !msgs /. Float.max 1e-9 (float_of_int queries));
      0)

let run_knn n queries seed center k jobs =
  Skipweb_util.Pool.with_pool ~jobs (fun pool ->
      let h = build_points ~n ~seed ~pool in
      let c = Point.create [ fst center; snd center ] in
      let answer, stats = HP2.scan h ~rng:(Prng.create (seed + 1)) (I.Knn { center = c; k }) in
      (match answer with
      | I.Knn_hits hits ->
          Printf.printf "%d nearest to %s:\n" k (Point.to_string c);
          List.iteri
            (fun i (p, d) -> Printf.printf "  %2d. %s  dist=%.6f\n" (i + 1) (Point.to_string p) d)
            hits
      | I.Box_hits _ -> assert false);
      Printf.printf "messages=%d ranges_visited=%d\n" stats.HP2.messages stats.HP2.ranges_visited;
      let centers = W.uniform_query_points ~seed:(seed + 3) ~n:queries ~dim:2 in
      let scans = Array.map (fun c -> I.Knn { center = c; k }) centers in
      let res = HP2.scan_batch ?pool h ~rng:(Prng.create (seed + 4)) scans in
      let msgs = Array.fold_left (fun a (_, s) -> a + s.HP2.messages) 0 res in
      Printf.printf "sweep: %d k-nn scans (k=%d): %d messages (%.1f msgs/scan)\n" queries k msgs
        (float_of_int msgs /. Float.max 1e-9 (float_of_int queries));
      0)

let run_prefix n queries seed prefix limit jobs =
  Skipweb_util.Pool.with_pool ~jobs (fun pool ->
      let publishers = max 4 (n / 500) in
      let keys = W.isbn_strings ~seed ~n ~publishers in
      let net = Network.create ~hosts:n in
      let h = HStr.build ~net ~seed ?pool keys in
      Printf.printf "trie skip-web: %d stored ISBNs (%d publishers), %d hosts\n" (HStr.size h)
        publishers (Network.host_count net);
      let answer, stats =
        HStr.scan h ~rng:(Prng.create (seed + 1)) { I.prefix; scan_limit = limit }
      in
      Printf.printf "prefix %S (limit %d): %d strings\n" prefix limit answer.I.total;
      List.iter (fun s -> Printf.printf "  %s\n" s) answer.I.strings;
      Printf.printf "messages=%d ranges_visited=%d\n" stats.HStr.messages stats.HStr.ranges_visited;
      (* The sweep draws publisher prefixes from the isbn generator's own
         Zipf-ish popularity law, so popular publishers are scanned more. *)
      let rng = Prng.create (seed + 3) in
      let scans =
        Array.init queries (fun _ ->
            let r = Prng.float rng 1.0 in
            let p = int_of_float (float_of_int publishers *. r *. r) in
            { I.prefix = Printf.sprintf "978-%d-" p; scan_limit = limit })
      in
      let res = HStr.scan_batch ?pool h ~rng:(Prng.create (seed + 4)) scans in
      let hits = ref 0 and msgs = ref 0 in
      Array.iter
        (fun ((a : I.trie_scan_answer), s) ->
          hits := !hits + a.I.total;
          msgs := !msgs + s.HStr.messages)
        res;
      Printf.printf "sweep: %d publisher prefixes: %d total hits, %d messages (%.1f msgs/scan)\n"
        queries !hits !msgs
        (float_of_int !msgs /. Float.max 1e-9 (float_of_int queries));
      0)

(* ---------------- command line ---------------- *)

open Cmdliner

let structure_arg =
  let sconv = Arg.enum structures in
  Arg.(value & opt sconv Skipweb & info [ "structure"; "s" ] ~docv:"NAME" ~doc:"Structure to drive: $(docv) is one of skipgraph, non, family, detskipnet, bucket, skipweb, skipweb-generic.")

let n_arg = Arg.(value & opt int 1024 & info [ "n"; "size" ] ~docv:"N" ~doc:"Number of stored keys.")
let queries_arg = Arg.(value & opt int 200 & info [ "queries"; "q" ] ~docv:"Q" ~doc:"Number of queries.")
let updates_arg = Arg.(value & opt int 50 & info [ "updates"; "u" ] ~docv:"U" ~doc:"Number of updates.")
let seed_arg = Arg.(value & opt int 2005 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
let m_arg = Arg.(value & opt (some int) None & info [ "m" ] ~docv:"M" ~doc:"Per-host memory target for skip-webs (default 4 log n).")
let buckets_arg = Arg.(value & opt (some int) None & info [ "buckets" ] ~docv:"H" ~doc:"Host count for bucket structures (default n / log n).")
let jobs_arg =
  (* Every subcommand's jobs count is validated here: values past the
     hardware's recommended domain count are clamped with a stderr
     warning instead of silently oversubscribing. *)
  let raw = Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"JOBS" ~doc:"Domains for the query phase and the write paths (bulk load, update rebuilds; skip-web structures only; 1 = sequential). Measured costs are identical for any value; only wall-clock time changes. Values above the recommended domain count are clamped with a warning.") in
  Term.(const (fun j -> Skipweb_util.Pool.clamp_jobs j) $ raw)

let query_cmd =
  let doc = "Measure query message costs on a structure." in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run_query $ structure_arg $ n_arg $ queries_arg $ seed_arg $ m_arg $ buckets_arg $ jobs_arg)

let update_cmd =
  let doc = "Measure insert/delete message costs on a structure." in
  Cmd.v (Cmd.info "update" ~doc)
    Term.(const run_update $ structure_arg $ n_arg $ updates_arg $ seed_arg $ m_arg $ buckets_arg $ jobs_arg)

let load_cmd =
  let doc = "Bulk-load a structure and report its storage footprint and build wall clock. With --jobs, the skip-web builds fan their per-level sweeps over a domain pool; everything but the wall-clock line is bit-identical for any jobs count." in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(const run_load $ structure_arg $ n_arg $ seed_arg $ m_arg $ buckets_arg $ jobs_arg)

let census_cmd =
  let doc = "Print the skip-web level census (Figure 2)." in
  Cmd.v (Cmd.info "census" ~doc) Term.(const run_census $ n_arg $ seed_arg)

let at_arg =
  Arg.(value & opt (some int) None & info [ "at" ] ~docv:"KEY" ~doc:"Query point to trace (default 50n, an interior probe).")

let trace_cmd =
  let doc = "Trace one query and print its hop tree and per-level message breakdown." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ structure_arg $ n_arg $ seed_arg $ m_arg $ at_arg)

let format_arg =
  let fconv = Arg.enum [ ("table", Table); ("json", Json); ("csv", Csv) ] in
  Arg.(value & opt fconv Table & info [ "format"; "f" ] ~docv:"FMT" ~doc:"Output format: table, json or csv.")

let r_arg =
  Arg.(value & opt int 2 & info [ "r"; "replicas" ] ~docv:"R" ~doc:"Replication factor: copies of every range, on distinct hosts (skip-web structures only).")

let epochs_arg =
  Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"E" ~doc:"Number of kill/repair/rejoin epochs.")

let fails_arg =
  Arg.(value & opt (some int) None & info [ "fails" ] ~docv:"F" ~doc:"Hosts killed per epoch (default max 1 (R-1): the most the replication factor is guaranteed to survive).")

let churn_cmd =
  let doc = "Drive kill/repair/rejoin epochs against a replicated skip-web and report per-epoch availability and repair cost. With --r 2 and the default single failure per epoch, the success rate must be 1.0 (exit 1 otherwise)." in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(const run_churn $ structure_arg $ n_arg $ queries_arg $ seed_arg $ m_arg $ r_arg $ epochs_arg $ fails_arg $ jobs_arg)

let pool_stats_arg =
  Arg.(value & flag & info [ "pool-stats" ] ~doc:"Include per-slot domain-pool utilization (tasks claimed, busy wall-clock) in the output. Off by default: the figures are wall-clock and jobs-dependent, so they would break byte-identical-across-jobs comparisons of the export.")

let stats_cmd =
  let doc = "Run a query/update workload and dump the metrics registry (messages-per-op distributions, per-host traffic and memory histograms)." in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run_stats $ structure_arg $ n_arg $ queries_arg $ updates_arg $ seed_arg $ m_arg $ buckets_arg $ format_arg $ jobs_arg $ pool_stats_arg)

let topk_arg =
  Arg.(value & opt int 10 & info [ "k"; "top"; "topk" ] ~docv:"K" ~doc:"Heavy-hitter table size: at most $(docv) hosts are monitored, whatever the host count.")

let alpha_arg =
  Arg.(value & opt float 1.1 & info [ "alpha" ] ~docv:"S" ~doc:"Zipf exponent for the skewed half of the query mix (higher = hotter head).")

let cache_levels_arg =
  Arg.(value & opt int 4 & info [ "cache-levels" ] ~docv:"C" ~doc:"Coarse levels covered by the read-path level cache (skip-web structures only; no effect while --cache-replicas is 1).")

let cache_replicas_arg =
  Arg.(value & opt int 1 & info [ "cache-replicas" ] ~docv:"K" ~doc:"Replicas per cached coarse range, routed per query origin (skip-web structures only; 1 = cache off, byte-identical to the uncached code).")

let cache_term = Term.(const (fun c k -> (c, k)) $ cache_levels_arg $ cache_replicas_arg)

let hotspots_cmd =
  let doc = "Drive mixed uniform + Zipf(--alpha) query traffic with the congestion observatory tapped in and report the hottest hosts (space-saving top-k), per-host congestion percentiles and Gini, the message-cost sketch, and (skip-web structures) the per-level load attribution — all in memory independent of the query count." in
  Cmd.v (Cmd.info "hotspots" ~doc)
    Term.(const run_hotspots $ structure_arg $ n_arg $ queries_arg $ seed_arg $ m_arg $ buckets_arg $ topk_arg $ alpha_arg $ cache_term $ jobs_arg $ pool_stats_arg)

let ops_arg =
  Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations in the open-loop plan.")

let rate_arg =
  Arg.(value & opt float 1000.0 & info [ "rate" ] ~docv:"R" ~doc:"Poisson arrival rate (ops per simulated second).")

let read_fraction_arg =
  Arg.(value & opt float 0.9 & info [ "read-fraction" ] ~docv:"F" ~doc:"Fraction of operations that are queries; the rest split evenly between inserts of fresh keys and removes of live ones.")

let serve_cmd =
  let doc = "Serve an open-loop workload (Poisson arrivals, Zipf + uniform query blend, read/write mix) replayed from its seed, and report the per-op message sketch and the per-host congestion table. With --cache-replicas > 1 the skip-web structures spread each coarse level over k per-origin replicas — the congestion Gini and top-16 share must fall while msgs/op stays put." in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run_serve $ structure_arg $ n_arg $ ops_arg $ rate_arg $ read_fraction_arg $ seed_arg $ m_arg $ buckets_arg $ alpha_arg $ cache_term $ jobs_arg)

let window_arg =
  Arg.(value & opt int 8 & info [ "window"; "w" ] ~docv:"W" ~doc:"Time-series window: only the last $(docv) epochs are retained (older ones roll off the ring).")

let monitor_cmd =
  let doc = "Run epoch after epoch of queries and watch the workload through fixed-size time-series rings: per-epoch mean and p99 message cost (from a bounded per-epoch sketch) and message totals, with only the last W epochs retained." in
  Cmd.v (Cmd.info "monitor" ~doc)
    Term.(const run_monitor $ structure_arg $ n_arg $ queries_arg $ epochs_arg $ window_arg $ seed_arg $ m_arg $ buckets_arg $ jobs_arg)

let floatpair_conv = Arg.(pair ~sep:',' float float)

let lo_arg =
  Arg.(value & opt floatpair_conv (0.25, 0.25) & info [ "lo" ] ~docv:"X,Y" ~doc:"Lower corner of the detailed box; coordinates in [0,1).")

let hi_arg =
  Arg.(value & opt floatpair_conv (0.75, 0.75) & info [ "hi" ] ~docv:"X,Y" ~doc:"Upper corner of the detailed box; coordinates in [0,1).")

let limit_arg =
  Arg.(value & opt int 10 & info [ "limit" ] ~docv:"L" ~doc:"Sample cap: at most $(docv) matches are materialized per scan (counts stay exact).")

let range_cmd =
  let doc = "Axis-aligned range scans on the 2-d quadtree skip-web: one detailed box, then a seeded sweep of --queries boxes fanned over --jobs domains through scan_batch. Every output line is bit-identical for any jobs count." in
  Cmd.v (Cmd.info "range" ~doc)
    Term.(const run_range $ n_arg $ queries_arg $ seed_arg $ lo_arg $ hi_arg $ limit_arg $ jobs_arg)

let knn_at_arg =
  Arg.(value & opt floatpair_conv (0.5, 0.5) & info [ "at" ] ~docv:"X,Y" ~doc:"Query point for the detailed k-nn scan; coordinates in [0,1).")

let k_arg = Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc:"Neighbors per k-nn scan.")

let knn_cmd =
  let doc = "Approximate k-nearest-neighbor scans on the 2-d quadtree skip-web: one detailed scan with distances, then a seeded sweep of --queries scans fanned over --jobs domains. Every output line is bit-identical for any jobs count." in
  Cmd.v (Cmd.info "knn" ~doc)
    Term.(const run_knn $ n_arg $ queries_arg $ seed_arg $ knn_at_arg $ k_arg $ jobs_arg)

let prefix_arg =
  Arg.(value & opt string "978-0-" & info [ "prefix" ] ~docv:"P" ~doc:"Prefix for the detailed scan. Stored keys look like 978-<publisher>-<title>.")

let prefix_cmd =
  let doc = "Prefix scans on the trie skip-web over ISBN-shaped strings: one detailed scan, then a seeded sweep of --queries publisher prefixes fanned over --jobs domains. Every output line is bit-identical for any jobs count." in
  Cmd.v (Cmd.info "prefix" ~doc)
    Term.(const run_prefix $ n_arg $ queries_arg $ seed_arg $ prefix_arg $ limit_arg $ jobs_arg)

let main =
  let doc = "Drive the skip-webs reproduction's distributed structures." in
  Cmd.group
    (Cmd.info "skipweb_cli" ~version:"1.0" ~doc)
    [
      query_cmd; update_cmd; load_cmd; census_cmd; trace_cmd; stats_cmd; churn_cmd; hotspots_cmd;
      serve_cmd; monitor_cmd; range_cmd; knn_cmd; prefix_cmd;
    ]

let () = exit (Cmd.eval' main)
